// ccserve — a real page server: the simulator's server::Server (buffer
// pool, lock manager, log, page directory, and any of the five consistency
// protocols) hosted on real threads, serving the wire protocol over TCP.
//
//   $ ccserve --algorithm=callback --clients=16 --port=7411
//   $ ccserve --algorithm=cert --clients=8 --port=0 --port-file=/tmp/port
//
// Clients are ccload processes (or in-process shards). The server runs
// until SIGINT/SIGTERM or --duration elapses, then prints a summary and
// exits 0 on a clean shutdown.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <limits>
#include <string>
#include <thread>

#include "config/params.h"
#include "sim/time.h"
#include "substrate/node.h"
#include "substrate/tcp.h"

namespace {

using ccsim::config::Algorithm;
using ccsim::config::CachingMode;
using ccsim::config::ExperimentConfig;

struct AlgorithmChoice {
  const char* name;
  Algorithm algorithm;
  CachingMode caching;
};

const AlgorithmChoice kAlgorithms[] = {
    {"2pl", Algorithm::kTwoPhaseLocking, CachingMode::kInterTransaction},
    {"2pl-intra", Algorithm::kTwoPhaseLocking,
     CachingMode::kIntraTransaction},
    {"cert", Algorithm::kCertification, CachingMode::kInterTransaction},
    {"cert-intra", Algorithm::kCertification,
     CachingMode::kIntraTransaction},
    {"callback", Algorithm::kCallbackLocking,
     CachingMode::kInterTransaction},
    {"no-wait", Algorithm::kNoWaitLocking, CachingMode::kInterTransaction},
    {"no-wait-notify", Algorithm::kNoWaitNotify,
     CachingMode::kInterTransaction},
};

void PrintUsage() {
  std::printf(
      "ccserve — real TCP page server for the five consistency protocols\n\n"
      "  --algorithm=NAME      2pl | 2pl-intra | cert | cert-intra |\n"
      "                        callback | no-wait | no-wait-notify\n"
      "  --clients=N           total client population the load generators\n"
      "                        will present (must match ccload --clients)\n"
      "  --port=N              TCP port (0 = ephemeral; printed at start)\n"
      "  --bind=HOST           bind address (default: all interfaces)\n"
      "  --port-file=PATH      write the bound port to PATH (scripting)\n"
      "  --buffer-pages=N      server buffer pool size\n"
      "  --mpl=N               server multiprogramming level\n"
      "  --seed=N              RNG seed (must match ccload --seed)\n"
      "  --duration=S          exit after S wall seconds (default: run\n"
      "                        until SIGINT/SIGTERM)\n"
      "  --check               run the consistency oracle on every commit\n"
      "  --help                this text\n");
}

bool ParseValue(const char* arg, const char* name, std::string* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') {
    return false;
  }
  *out = arg + len + 1;
  return true;
}

volatile std::sig_atomic_t g_signal = 0;
void OnSignal(int sig) { g_signal = sig; }

}  // namespace

int main(int argc, char** argv) {
  ExperimentConfig cfg = ccsim::config::BaseConfig();
  cfg.system.num_clients = 10;
  std::string algorithm_name = "2pl";
  std::string port_file;
  std::string bind_host;
  int port = 0;
  double duration_s = 0.0;  // 0 = until signal

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string value;
    if (std::strcmp(arg, "--help") == 0) {
      PrintUsage();
      return 0;
    }
    if (std::strcmp(arg, "--check") == 0) {
      cfg.checker.enabled = true;
    } else if (ParseValue(arg, "--algorithm", &value)) {
      algorithm_name = value;
    } else if (ParseValue(arg, "--clients", &value)) {
      cfg.system.num_clients = std::atoi(value.c_str());
    } else if (ParseValue(arg, "--port", &value)) {
      port = std::atoi(value.c_str());
    } else if (ParseValue(arg, "--bind", &value)) {
      bind_host = value;
    } else if (ParseValue(arg, "--port-file", &value)) {
      port_file = value;
    } else if (ParseValue(arg, "--buffer-pages", &value)) {
      cfg.system.server_buffer_pages = std::atoi(value.c_str());
    } else if (ParseValue(arg, "--mpl", &value)) {
      cfg.system.mpl = std::atoi(value.c_str());
    } else if (ParseValue(arg, "--seed", &value)) {
      cfg.control.seed = static_cast<std::uint64_t>(
          std::strtoull(value.c_str(), nullptr, 10));
    } else if (ParseValue(arg, "--duration", &value)) {
      duration_s = std::atof(value.c_str());
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg);
      return 2;
    }
  }

  bool found = false;
  for (const AlgorithmChoice& choice : kAlgorithms) {
    if (algorithm_name == choice.name) {
      cfg.algorithm.algorithm = choice.algorithm;
      cfg.algorithm.caching = choice.caching;
      found = true;
      break;
    }
  }
  if (!found) {
    std::fprintf(stderr, "unknown algorithm '%s'\n", algorithm_name.c_str());
    return 2;
  }
  cfg = ccsim::substrate::RawSpeedConfig(cfg);
  if (const ccsim::Status status = cfg.Validate(); !status.ok()) {
    std::fprintf(stderr, "invalid configuration: %s\n",
                 status.ToString().c_str());
    return 2;
  }

  ccsim::substrate::ServerNode node(cfg, cfg.control.seed);
  std::string error;
  auto transport = ccsim::substrate::TcpServerTransport::Listen(
      port, ccsim::substrate::MakeHello(cfg), &node.substrate(), &error,
      bind_host);
  if (transport == nullptr) {
    std::fprintf(stderr, "listen failed: %s\n", error.c_str());
    return 1;
  }
  node.network().set_transport(transport.get());
  ccsim::substrate::TcpServerTransport* t = transport.get();
  node.substrate().set_flush_hook([t] { return t->Flush(); });
  node.Start();

  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%d\n", transport->port());
    std::fclose(f);
  }
  std::printf("ccserve: %s, %d clients, port %d%s\n", algorithm_name.c_str(),
              cfg.system.num_clients, transport->port(),
              cfg.checker.enabled ? ", oracle on" : "");
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  std::uint64_t events = 0;
  std::thread loop([&node, &events] {
    events = node.RunLoop(std::numeric_limits<ccsim::sim::Ticks>::max() / 4);
  });
  // Signal handlers cannot touch the substrate's condition variable, so a
  // watcher polls the flag (and the optional wall deadline) at 50 ms.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(duration_s));
  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (g_signal != 0 ||
        (duration_s > 0 && std::chrono::steady_clock::now() >= deadline)) {
      break;
    }
  }
  node.substrate().Stop();
  loop.join();
  transport->Close();
  node.FinalizeChecker();

  std::printf(
      "ccserve: clean shutdown — %llu events, %llu frames in, "
      "%llu connections, %llu unroutable drops\n",
      static_cast<unsigned long long>(events),
      static_cast<unsigned long long>(transport->frames_received()),
      static_cast<unsigned long long>(transport->connections_accepted()),
      static_cast<unsigned long long>(transport->unroutable_drops()));
  std::printf(
      "ccserve: commits logged %llu, buffer hit %.2f, writebacks %llu, "
      "deadlocks %llu, shed %llu\n",
      static_cast<unsigned long long>(node.server().log().commits_logged()),
      node.server().pool().HitRatio(),
      static_cast<unsigned long long>(node.server().pool().writebacks()),
      static_cast<unsigned long long>(
          node.server().locks().deadlocks_detected()),
      static_cast<unsigned long long>(node.metrics().shed_requests()));
  if (node.checker() != nullptr) {
    std::printf("ccserve: oracle clean — %llu commits checked, %llu edges\n",
                static_cast<unsigned long long>(
                    node.checker()->oracle().commits_observed()),
                static_cast<unsigned long long>(
                    node.checker()->oracle().edges()));
  }
  return 0;
}
