// ccload — multi-threaded load generator for ccserve. Drives a slice of
// the client population (the same client::Client + workload code the DES
// runs) against a real page server over TCP, then reports wall-clock
// throughput, latency percentiles, and the attempt-conservation check.
//
//   $ ccload --port=7411 --algorithm=callback --clients=16 --duration=30
//   $ ccload --port-file=/tmp/port --algorithm=cert --clients=8
//            --lo=0 --hi=4 --threads=2   # half the population, 2 shards
//
// Exits non-zero if any transaction was lost, the conservation invariant
// (started == commits + aborts + in-flight, in-flight <= clients) fails,
// or nothing committed at all.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "config/params.h"
#include "runner/metrics.h"
#include "sim/time.h"
#include "substrate/node.h"
#include "substrate/tcp.h"

namespace {

using ccsim::config::Algorithm;
using ccsim::config::CachingMode;
using ccsim::config::ExperimentConfig;

struct AlgorithmChoice {
  const char* name;
  Algorithm algorithm;
  CachingMode caching;
};

const AlgorithmChoice kAlgorithms[] = {
    {"2pl", Algorithm::kTwoPhaseLocking, CachingMode::kInterTransaction},
    {"2pl-intra", Algorithm::kTwoPhaseLocking,
     CachingMode::kIntraTransaction},
    {"cert", Algorithm::kCertification, CachingMode::kInterTransaction},
    {"cert-intra", Algorithm::kCertification,
     CachingMode::kIntraTransaction},
    {"callback", Algorithm::kCallbackLocking,
     CachingMode::kInterTransaction},
    {"no-wait", Algorithm::kNoWaitLocking, CachingMode::kInterTransaction},
    {"no-wait-notify", Algorithm::kNoWaitNotify,
     CachingMode::kInterTransaction},
};

void PrintUsage() {
  std::printf(
      "ccload — TCP load generator for ccserve\n\n"
      "  --host=H              server hostname or IPv4 address\n"
      "                        (default 127.0.0.1; see README for a\n"
      "                        two-host run)\n"
      "  --port=N              server port\n"
      "  --port-file=PATH      read the port from PATH (ccserve wrote it)\n"
      "  --algorithm=NAME      must match the server\n"
      "  --clients=N           total client population (must match server)\n"
      "  --lo=N --hi=N         global client-id slice this process drives\n"
      "                        (default the whole population)\n"
      "  --threads=N           event-loop shards (default: 1 per 8 clients,\n"
      "                        at least 2)\n"
      "  --duration=S          measured wall seconds (default 10)\n"
      "  --warmup=S            warmup before the stats window (default 1)\n"
      "  --locality=P --prob-write=P   workload shape\n"
      "  --seed=N              RNG seed (must match the server)\n"
      "  --help                this text\n");
}

bool ParseValue(const char* arg, const char* name, std::string* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') {
    return false;
  }
  *out = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentConfig cfg = ccsim::config::BaseConfig();
  cfg.system.num_clients = 10;
  std::string algorithm_name = "2pl";
  std::string host = "127.0.0.1";
  std::string port_file;
  int port = 0;
  int lo = 0;
  int hi = -1;  // default: num_clients
  int threads = 0;
  double duration_s = 10.0;
  double warmup_s = 1.0;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string value;
    if (std::strcmp(arg, "--help") == 0) {
      PrintUsage();
      return 0;
    }
    if (ParseValue(arg, "--host", &value)) {
      host = value;
    } else if (ParseValue(arg, "--port", &value)) {
      port = std::atoi(value.c_str());
    } else if (ParseValue(arg, "--port-file", &value)) {
      port_file = value;
    } else if (ParseValue(arg, "--algorithm", &value)) {
      algorithm_name = value;
    } else if (ParseValue(arg, "--clients", &value)) {
      cfg.system.num_clients = std::atoi(value.c_str());
    } else if (ParseValue(arg, "--lo", &value)) {
      lo = std::atoi(value.c_str());
    } else if (ParseValue(arg, "--hi", &value)) {
      hi = std::atoi(value.c_str());
    } else if (ParseValue(arg, "--threads", &value)) {
      threads = std::atoi(value.c_str());
    } else if (ParseValue(arg, "--duration", &value)) {
      duration_s = std::atof(value.c_str());
    } else if (ParseValue(arg, "--warmup", &value)) {
      warmup_s = std::atof(value.c_str());
    } else if (ParseValue(arg, "--locality", &value)) {
      cfg.transaction.inter_xact_loc = std::atof(value.c_str());
    } else if (ParseValue(arg, "--prob-write", &value)) {
      cfg.transaction.prob_write = std::atof(value.c_str());
    } else if (ParseValue(arg, "--seed", &value)) {
      cfg.control.seed = static_cast<std::uint64_t>(
          std::strtoull(value.c_str(), nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg);
      return 2;
    }
  }

  bool found = false;
  for (const AlgorithmChoice& choice : kAlgorithms) {
    if (algorithm_name == choice.name) {
      cfg.algorithm.algorithm = choice.algorithm;
      cfg.algorithm.caching = choice.caching;
      found = true;
      break;
    }
  }
  if (!found) {
    std::fprintf(stderr, "unknown algorithm '%s'\n", algorithm_name.c_str());
    return 2;
  }
  cfg = ccsim::substrate::RawSpeedConfig(cfg);
  if (const ccsim::Status status = cfg.Validate(); !status.ok()) {
    std::fprintf(stderr, "invalid configuration: %s\n",
                 status.ToString().c_str());
    return 2;
  }
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "r");
    if (f == nullptr || std::fscanf(f, "%d", &port) != 1) {
      std::fprintf(stderr, "cannot read port from %s\n", port_file.c_str());
      if (f != nullptr) {
        std::fclose(f);
      }
      return 2;
    }
    std::fclose(f);
  }
  if (port <= 0) {
    std::fprintf(stderr, "need --port or --port-file\n");
    return 2;
  }
  if (hi < 0) {
    hi = cfg.system.num_clients;
  }
  if (lo < 0 || lo >= hi || hi > cfg.system.num_clients) {
    std::fprintf(stderr, "bad client slice [%d, %d) of %d\n", lo, hi,
                 cfg.system.num_clients);
    return 2;
  }
  const int driven = hi - lo;
  int shards = threads > 0 ? threads : (driven + 7) / 8;
  if (shards < 2) {
    shards = 2;
  }
  if (shards > driven) {
    shards = driven;
  }
  if (duration_s <= 0) {
    std::fprintf(stderr, "--duration must be positive\n");
    return 2;
  }

  // --- connect shards -----------------------------------------------------
  const ccsim::substrate::Hello base_hello = ccsim::substrate::MakeHello(cfg);
  std::vector<std::unique_ptr<ccsim::substrate::ClientShard>> shard_nodes;
  std::vector<std::unique_ptr<ccsim::substrate::TcpClientTransport>>
      transports;
  for (int s = 0; s < shards; ++s) {
    const int shard_lo = lo + driven * s / shards;
    const int shard_hi = lo + driven * (s + 1) / shards;
    auto shard = std::make_unique<ccsim::substrate::ClientShard>(
        cfg, cfg.control.seed, shard_lo, shard_hi);
    ccsim::substrate::Hello hello = base_hello;
    hello.client_lo = shard_lo;
    hello.client_hi = shard_hi;
    std::string error;
    auto transport = ccsim::substrate::TcpClientTransport::Connect(
        host, port, hello, &shard->substrate(), &error);
    if (transport == nullptr) {
      std::fprintf(stderr, "connect to %s:%d failed: %s\n", host.c_str(),
                   port, error.c_str());
      return 1;
    }
    shard->network().set_transport(transport.get());
    ccsim::substrate::TcpClientTransport* t = transport.get();
    shard->substrate().set_flush_hook([t] { return t->Flush(); });
    shard->Start();
    shard_nodes.push_back(std::move(shard));
    transports.push_back(std::move(transport));
  }
  std::printf("ccload: %s, clients [%d, %d) of %d, %d shards -> %s:%d\n",
              algorithm_name.c_str(), lo, hi, cfg.system.num_clients, shards,
              host.c_str(), port);
  std::fflush(stdout);

  // --- run ----------------------------------------------------------------
  const ccsim::sim::Ticks warmup = ccsim::sim::SecondsToTicks(warmup_s);
  const ccsim::sim::Ticks duration = ccsim::sim::SecondsToTicks(duration_s);
  std::vector<std::thread> loops;
  loops.reserve(static_cast<std::size_t>(shards));
  for (auto& shard_ptr : shard_nodes) {
    ccsim::substrate::ClientShard* shard = shard_ptr.get();
    loops.emplace_back(
        [shard, warmup, duration] { shard->RunLoop(warmup, duration); });
  }
  for (std::thread& t : loops) {
    t.join();
  }
  for (auto& transport : transports) {
    transport->Close();
  }

  // --- report -------------------------------------------------------------
  std::uint64_t commits = 0, aborts = 0, started = 0, lost = 0;
  std::uint64_t messages = 0;
  double response_weighted = 0.0;
  ccsim::runner::LatencyHistogram histogram;
  for (auto& shard : shard_nodes) {
    const ccsim::runner::Metrics& m = shard->metrics();
    commits += m.commits();
    aborts += m.aborts();
    started += m.attempts_started();
    lost += m.transactions_lost();
    response_weighted +=
        m.response_s().mean() * static_cast<double>(m.response_s().count());
    histogram.Merge(m.response_histogram());
    messages += shard->network().messages_sent();
  }
  const std::uint64_t finished = commits + aborts;
  const std::uint64_t in_flight = started > finished ? started - finished : 0;
  std::printf("throughput  : %.1f commits/s over %.1f s\n",
              static_cast<double>(commits) / duration_s, duration_s);
  std::printf("commits     : %llu (aborts %llu, attempts started %llu, "
              "in flight at stop %llu)\n",
              static_cast<unsigned long long>(commits),
              static_cast<unsigned long long>(aborts),
              static_cast<unsigned long long>(started),
              static_cast<unsigned long long>(in_flight));
  std::printf("latency     : mean %.4f s, p50 %.4f, p90 %.4f, p99 %.4f\n",
              commits > 0
                  ? response_weighted / static_cast<double>(commits)
                  : 0.0,
              histogram.Quantile(0.50), histogram.Quantile(0.90),
              histogram.Quantile(0.99));
  std::printf("messages    : %llu sent\n",
              static_cast<unsigned long long>(messages));

  bool ok = true;
  if (commits == 0) {
    std::printf("FAIL: no transactions committed\n");
    ok = false;
  }
  if (lost != 0) {
    std::printf("FAIL: %llu transactions lost\n",
                static_cast<unsigned long long>(lost));
    ok = false;
  }
  // Window conservation: started + in_flight(start) == finished +
  // in_flight(end), both in-flight terms bounded by the driven population
  // (the warmup reset can leave the window's start imbalance non-zero).
  const std::uint64_t slack = static_cast<std::uint64_t>(driven);
  if (started > finished + slack || finished > started + slack) {
    std::printf("FAIL: conservation violated (started %llu, finished %llu, "
                "clients %d)\n",
                static_cast<unsigned long long>(started),
                static_cast<unsigned long long>(finished), driven);
    ok = false;
  }
  return ok ? 0 : 1;
}
