// ccload — multi-threaded load generator for ccserve. Drives a slice of
// the client population (the same client::Client + workload code the DES
// runs) against a real page server over TCP, then reports wall-clock
// throughput, latency percentiles, and the attempt-conservation check.
//
//   $ ccload --port=7411 --algorithm=callback --clients=16 --duration=30
//   $ ccload --port-file=/tmp/port --algorithm=cert --clients=8
//            --lo=0 --hi=4 --threads=2   # half the population, 2 shards
//
// Exits non-zero if any transaction was lost, the conservation invariant
// (started == commits + aborts + in-flight, in-flight <= clients) fails,
// or nothing committed at all.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "config/params.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "net/message.h"
#include "runner/metrics.h"
#include "sim/time.h"
#include "substrate/faulty_transport.h"
#include "substrate/node.h"
#include "substrate/tcp.h"

namespace {

using ccsim::config::Algorithm;
using ccsim::config::CachingMode;
using ccsim::config::ExperimentConfig;

struct AlgorithmChoice {
  const char* name;
  Algorithm algorithm;
  CachingMode caching;
};

const AlgorithmChoice kAlgorithms[] = {
    {"2pl", Algorithm::kTwoPhaseLocking, CachingMode::kInterTransaction},
    {"2pl-intra", Algorithm::kTwoPhaseLocking,
     CachingMode::kIntraTransaction},
    {"cert", Algorithm::kCertification, CachingMode::kInterTransaction},
    {"cert-intra", Algorithm::kCertification,
     CachingMode::kIntraTransaction},
    {"callback", Algorithm::kCallbackLocking,
     CachingMode::kInterTransaction},
    {"no-wait", Algorithm::kNoWaitLocking, CachingMode::kInterTransaction},
    {"no-wait-notify", Algorithm::kNoWaitNotify,
     CachingMode::kInterTransaction},
};

void PrintUsage() {
  std::printf(
      "ccload — TCP load generator for ccserve\n\n"
      "  --host=H              server hostname or IPv4 address\n"
      "                        (default 127.0.0.1; see README for a\n"
      "                        two-host run)\n"
      "  --port=N              server port\n"
      "  --port-file=PATH      read the port from PATH (ccserve wrote it)\n"
      "  --algorithm=NAME      must match the server\n"
      "  --clients=N           total client population (must match server)\n"
      "  --lo=N --hi=N         global client-id slice this process drives\n"
      "                        (default the whole population)\n"
      "  --threads=N           event-loop shards (default: 1 per 8 clients,\n"
      "                        at least 2)\n"
      "  --duration=S          measured wall seconds (default 10)\n"
      "  --warmup=S            warmup before the stats window (default 1)\n"
      "  --locality=P --prob-write=P   workload shape\n"
      "  --seed=N              RNG seed (must match the server)\n"
      "  --drop=P --dup=P      per-frame drop/duplicate probability on this\n"
      "                        side of the wire\n"
      "  --spike=P:MS          per-frame delay-spike probability and size\n"
      "  --partition=NODE:AT:DUR[:DIR][:hard]\n"
      "                        blackhole client NODE's frames at AT s for\n"
      "                        DUR s; DIR = both | in | out; 'hard' also\n"
      "                        kills the owning shard's TCP connection\n"
      "  --recovery            run the client recovery layer (timeouts,\n"
      "                        retries, leases) without injecting faults;\n"
      "                        any fault flag implies it. The server must\n"
      "                        be started with matching fault flags so both\n"
      "                        sides agree on recovery mode.\n"
      "  --help                this text\n");
}

bool ParseValue(const char* arg, const char* name, std::string* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') {
    return false;
  }
  *out = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentConfig cfg = ccsim::config::BaseConfig();
  cfg.system.num_clients = 10;
  std::string algorithm_name = "2pl";
  std::string host = "127.0.0.1";
  std::string port_file;
  int port = 0;
  int lo = 0;
  int hi = -1;  // default: num_clients
  int threads = 0;
  double duration_s = 10.0;
  double warmup_s = 1.0;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string value;
    if (std::strcmp(arg, "--help") == 0) {
      PrintUsage();
      return 0;
    }
    if (ParseValue(arg, "--host", &value)) {
      host = value;
    } else if (ParseValue(arg, "--port", &value)) {
      port = std::atoi(value.c_str());
    } else if (ParseValue(arg, "--port-file", &value)) {
      port_file = value;
    } else if (ParseValue(arg, "--algorithm", &value)) {
      algorithm_name = value;
    } else if (ParseValue(arg, "--clients", &value)) {
      cfg.system.num_clients = std::atoi(value.c_str());
    } else if (ParseValue(arg, "--lo", &value)) {
      lo = std::atoi(value.c_str());
    } else if (ParseValue(arg, "--hi", &value)) {
      hi = std::atoi(value.c_str());
    } else if (ParseValue(arg, "--threads", &value)) {
      threads = std::atoi(value.c_str());
    } else if (ParseValue(arg, "--duration", &value)) {
      duration_s = std::atof(value.c_str());
    } else if (ParseValue(arg, "--warmup", &value)) {
      warmup_s = std::atof(value.c_str());
    } else if (ParseValue(arg, "--locality", &value)) {
      cfg.transaction.inter_xact_loc = std::atof(value.c_str());
    } else if (ParseValue(arg, "--prob-write", &value)) {
      cfg.transaction.prob_write = std::atof(value.c_str());
    } else if (ParseValue(arg, "--seed", &value)) {
      cfg.control.seed = static_cast<std::uint64_t>(
          std::strtoull(value.c_str(), nullptr, 10));
    } else if (std::strcmp(arg, "--recovery") == 0) {
      cfg.fault.recovery_enabled = true;
    } else if (ParseValue(arg, "--drop", &value)) {
      cfg.fault.drop_probability = std::atof(value.c_str());
      cfg.fault.recovery_enabled = true;
    } else if (ParseValue(arg, "--dup", &value)) {
      cfg.fault.duplicate_probability = std::atof(value.c_str());
      cfg.fault.recovery_enabled = true;
    } else if (ParseValue(arg, "--spike", &value)) {
      const std::size_t colon = value.find(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "--spike wants P:MS\n");
        return 2;
      }
      cfg.fault.delay_spike_probability =
          std::atof(value.substr(0, colon).c_str());
      cfg.fault.delay_spike_ms = std::atof(value.substr(colon + 1).c_str());
      cfg.fault.recovery_enabled = true;
    } else if (ParseValue(arg, "--partition", &value)) {
      const std::size_t c1 = value.find(':');
      const std::size_t c2 =
          c1 == std::string::npos ? std::string::npos : value.find(':', c1 + 1);
      if (c2 == std::string::npos) {
        std::fprintf(stderr, "--partition wants NODE:AT:DUR[:DIR][:hard]\n");
        return 2;
      }
      const std::size_t c3 = value.find(':', c2 + 1);
      ccsim::config::FaultParams::PartitionEvent part;
      part.node = std::atoi(value.substr(0, c1).c_str());
      part.at_s = std::atof(value.substr(c1 + 1, c2 - c1 - 1).c_str());
      part.duration_s = std::atof(value.substr(c2 + 1, c3 - c2 - 1).c_str());
      for (std::size_t pos = c3; pos != std::string::npos;) {
        const std::size_t next = value.find(':', pos + 1);
        const std::string token = value.substr(
            pos + 1,
            next == std::string::npos ? std::string::npos : next - pos - 1);
        if (token == "both") {
          part.direction = 0;
        } else if (token == "in") {
          part.direction = 1;
        } else if (token == "out") {
          part.direction = 2;
        } else if (token == "hard") {
          part.hard = true;
        } else {
          std::fprintf(stderr,
                       "--partition DIR wants both|in|out (optionally "
                       "followed by :hard)\n");
          return 2;
        }
        pos = next;
      }
      cfg.fault.partitions.push_back(part);
      cfg.fault.recovery_enabled = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg);
      return 2;
    }
  }

  bool found = false;
  for (const AlgorithmChoice& choice : kAlgorithms) {
    if (algorithm_name == choice.name) {
      cfg.algorithm.algorithm = choice.algorithm;
      cfg.algorithm.caching = choice.caching;
      found = true;
      break;
    }
  }
  if (!found) {
    std::fprintf(stderr, "unknown algorithm '%s'\n", algorithm_name.c_str());
    return 2;
  }
  cfg = ccsim::substrate::RawSpeedConfig(cfg);
  if (const ccsim::Status status = cfg.Validate(); !status.ok()) {
    std::fprintf(stderr, "invalid configuration: %s\n",
                 status.ToString().c_str());
    return 2;
  }
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "r");
    if (f == nullptr || std::fscanf(f, "%d", &port) != 1) {
      std::fprintf(stderr, "cannot read port from %s\n", port_file.c_str());
      if (f != nullptr) {
        std::fclose(f);
      }
      return 2;
    }
    std::fclose(f);
  }
  if (port <= 0) {
    std::fprintf(stderr, "need --port or --port-file\n");
    return 2;
  }
  if (hi < 0) {
    hi = cfg.system.num_clients;
  }
  if (lo < 0 || lo >= hi || hi > cfg.system.num_clients) {
    std::fprintf(stderr, "bad client slice [%d, %d) of %d\n", lo, hi,
                 cfg.system.num_clients);
    return 2;
  }
  const int driven = hi - lo;
  int shards = threads > 0 ? threads : (driven + 7) / 8;
  if (shards < 2) {
    shards = 2;
  }
  if (shards > driven) {
    shards = driven;
  }
  if (duration_s <= 0) {
    std::fprintf(stderr, "--duration must be positive\n");
    return 2;
  }

  // --- connect shards -----------------------------------------------------
  const ccsim::fault::FaultPlan plan = ccsim::fault::MakePlan(cfg.fault);
  const bool wire_faults = plan.link.Any() || !plan.partitions.empty();
  const ccsim::substrate::Hello base_hello = ccsim::substrate::MakeHello(cfg);
  std::vector<std::unique_ptr<ccsim::substrate::ClientShard>> shard_nodes;
  std::vector<std::unique_ptr<ccsim::substrate::TcpClientTransport>>
      transports;
  std::vector<std::unique_ptr<ccsim::substrate::WireFaultAdapter>> adapters;
  for (int s = 0; s < shards; ++s) {
    const int shard_lo = lo + driven * s / shards;
    const int shard_hi = lo + driven * (s + 1) / shards;
    auto shard = std::make_unique<ccsim::substrate::ClientShard>(
        cfg, cfg.control.seed, shard_lo, shard_hi);
    ccsim::substrate::Hello hello = base_hello;
    hello.client_lo = shard_lo;
    hello.client_hi = shard_hi;
    std::string error;
    auto transport = ccsim::substrate::TcpClientTransport::Connect(
        host, port, hello, &shard->substrate(), &error);
    if (transport == nullptr) {
      std::fprintf(stderr, "connect to %s:%d failed: %s\n", host.c_str(),
                   port, error.c_str());
      return 1;
    }
    ccsim::substrate::TcpClientTransport* t = transport.get();
    if (cfg.fault.recovery_enabled) {
      // A server crash (or a hard partition) kills this shard's connection;
      // the reader redials so RPC retries can land post-recovery.
      t->EnableReconnect();
    }
    if (wire_faults) {
      auto adapter = std::make_unique<ccsim::substrate::WireFaultAdapter>(
          plan, cfg.control.seed + 1 + static_cast<std::uint64_t>(s),
          &shard->substrate(), t);
      ccsim::substrate::WireFaultAdapter* ad = adapter.get();
      shard->network().set_transport(ad);
      shard->substrate().set_flush_hook([ad] { return ad->Flush(); });
      shard->InstallInboundFilter(
          [ad](const ccsim::net::Message& msg) {
            return ad->AllowInbound(msg);
          });
      // Partition windows for clients this shard owns, on the shard's own
      // calendar (ticks are wall µs relative to its loop epoch).
      ccsim::sim::Simulator& sim = shard->substrate().sim();
      ccsim::fault::FaultInjector* inj = &ad->injector();
      for (const ccsim::fault::PartitionWindow& part : plan.partitions) {
        if (part.node < shard_lo || part.node >= shard_hi) {
          continue;
        }
        const int pnode = part.node;
        const ccsim::fault::PartitionWindow::Direction dir = part.direction;
        sim.ScheduleAt(part.at, [inj, t, pnode, dir, hard = part.hard] {
          inj->SetPartitioned(pnode, dir, true);
          if (hard) {
            t->AbortConnection();
          }
        });
        sim.ScheduleAt(part.at + part.duration, [inj, pnode, dir] {
          inj->SetPartitioned(pnode, dir, false);
        });
      }
      adapters.push_back(std::move(adapter));
    } else {
      shard->network().set_transport(t);
      shard->substrate().set_flush_hook([t] { return t->Flush(); });
    }
    shard->Start();
    shard_nodes.push_back(std::move(shard));
    transports.push_back(std::move(transport));
  }
  std::printf("ccload: %s, clients [%d, %d) of %d, %d shards -> %s:%d\n",
              algorithm_name.c_str(), lo, hi, cfg.system.num_clients, shards,
              host.c_str(), port);
  std::fflush(stdout);

  // --- run ----------------------------------------------------------------
  const ccsim::sim::Ticks warmup = ccsim::sim::SecondsToTicks(warmup_s);
  const ccsim::sim::Ticks duration = ccsim::sim::SecondsToTicks(duration_s);
  std::vector<std::thread> loops;
  loops.reserve(static_cast<std::size_t>(shards));
  for (auto& shard_ptr : shard_nodes) {
    ccsim::substrate::ClientShard* shard = shard_ptr.get();
    loops.emplace_back(
        [shard, warmup, duration] { shard->RunLoop(warmup, duration); });
  }
  for (std::thread& t : loops) {
    t.join();
  }
  for (auto& transport : transports) {
    transport->Close();
  }

  // --- report -------------------------------------------------------------
  std::uint64_t commits = 0, aborts = 0, started = 0, lost = 0;
  std::uint64_t messages = 0;
  std::uint64_t retries = 0, timeouts = 0, leases = 0, dup_suppressed = 0;
  std::uint64_t timeout_aborts = 0, crash_aborts = 0, budget_exhausted = 0;
  std::uint64_t unknown = 0;
  double response_weighted = 0.0;
  ccsim::runner::LatencyHistogram histogram;
  for (auto& shard : shard_nodes) {
    const ccsim::runner::Metrics& m = shard->metrics();
    commits += m.commits();
    aborts += m.aborts();
    started += m.attempts_started();
    lost += m.transactions_lost();
    retries += m.rpc_retries();
    timeouts += m.rpc_timeouts();
    leases += m.lease_expirations();
    dup_suppressed += m.duplicates_suppressed();
    timeout_aborts += m.timeout_aborts();
    crash_aborts += m.crash_aborts();
    budget_exhausted += m.retry_budget_exhaustions();
    unknown += m.unknown_outcomes();
    response_weighted +=
        m.response_s().mean() * static_cast<double>(m.response_s().count());
    histogram.Merge(m.response_histogram());
    messages += shard->network().messages_sent();
  }
  std::uint64_t reconnects = 0, disconnected_drops = 0;
  for (auto& transport : transports) {
    reconnects += transport->reconnects();
    disconnected_drops += transport->disconnected_drops();
  }
  std::uint64_t wire_dropped = 0, wire_duplicated = 0, wire_spikes = 0;
  std::uint64_t wire_down_drops = 0, wire_partition_drops = 0;
  for (auto& adapter : adapters) {
    const ccsim::fault::FaultInjector& inj = adapter->injector();
    wire_dropped += inj.messages_dropped();
    wire_duplicated += inj.messages_duplicated();
    wire_spikes += inj.delay_spikes();
    wire_down_drops += inj.down_drops();
    wire_partition_drops += inj.partition_drops();
  }
  const std::uint64_t finished = commits + aborts;
  const std::uint64_t in_flight = started > finished ? started - finished : 0;
  std::printf("throughput  : %.1f commits/s over %.1f s\n",
              static_cast<double>(commits) / duration_s, duration_s);
  std::printf("commits     : %llu (aborts %llu, attempts started %llu, "
              "in flight at stop %llu)\n",
              static_cast<unsigned long long>(commits),
              static_cast<unsigned long long>(aborts),
              static_cast<unsigned long long>(started),
              static_cast<unsigned long long>(in_flight));
  std::printf("latency     : mean %.4f s, p50 %.4f, p90 %.4f, p99 %.4f\n",
              commits > 0
                  ? response_weighted / static_cast<double>(commits)
                  : 0.0,
              histogram.Quantile(0.50), histogram.Quantile(0.90),
              histogram.Quantile(0.99));
  std::printf("messages    : %llu sent\n",
              static_cast<unsigned long long>(messages));
  if (cfg.fault.recovery_enabled) {
    std::printf(
        "recovery    : retries %llu, timeouts %llu, lease expirations %llu, "
        "dup suppressed %llu, unknown outcomes %llu\n",
        static_cast<unsigned long long>(retries),
        static_cast<unsigned long long>(timeouts),
        static_cast<unsigned long long>(leases),
        static_cast<unsigned long long>(dup_suppressed),
        static_cast<unsigned long long>(unknown));
    std::printf(
        "recovery    : timeout aborts %llu, crash aborts %llu, retry budget "
        "exhausted %llu, reconnects %llu, disconnected drops %llu\n",
        static_cast<unsigned long long>(timeout_aborts),
        static_cast<unsigned long long>(crash_aborts),
        static_cast<unsigned long long>(budget_exhausted),
        static_cast<unsigned long long>(reconnects),
        static_cast<unsigned long long>(disconnected_drops));
  }
  if (wire_faults) {
    std::printf(
        "wire faults : dropped %llu, duplicated %llu, spikes %llu, "
        "down-drops %llu, partition-drops %llu\n",
        static_cast<unsigned long long>(wire_dropped),
        static_cast<unsigned long long>(wire_duplicated),
        static_cast<unsigned long long>(wire_spikes),
        static_cast<unsigned long long>(wire_down_drops),
        static_cast<unsigned long long>(wire_partition_drops));
  }

  bool ok = true;
  if (commits == 0) {
    std::printf("FAIL: no transactions committed\n");
    ok = false;
  }
  if (lost != 0) {
    std::printf("FAIL: %llu transactions lost\n",
                static_cast<unsigned long long>(lost));
    ok = false;
  }
  // Window conservation: started + in_flight(start) == finished +
  // in_flight(end), both in-flight terms bounded by the driven population
  // (the warmup reset can leave the window's start imbalance non-zero).
  // This bound holds under wire faults too: each client drives exactly one
  // transaction at a time, and every faulted attempt resolves to a commit,
  // an abort, or a still-in-flight retry — never a silent disappearance
  // (that would be transactions_lost, checked above).
  const std::uint64_t slack = static_cast<std::uint64_t>(driven);
  if (started > finished + slack || finished > started + slack) {
    std::printf("FAIL: conservation violated (started %llu, finished %llu, "
                "clients %d)\n",
                static_cast<unsigned long long>(started),
                static_cast<unsigned long long>(finished), driven);
    ok = false;
  }
  return ok ? 0 : 1;
}
