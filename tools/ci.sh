#!/usr/bin/env bash
# Single-command CI entry point. Builds the tree under ASan/UBSan and runs,
# in order:
#   1. the full tier-1 suite (every registered test),
#   2. the chaos suite      (ctest -L chaos  — fault-injection survival),
#   3. the oracle suite     (ctest -L oracle — serializability oracle +
#                            invariant auditor, incl. the broken-protocol
#                            negative control),
#   4. the determinism tests (byte-identical replay, serial-vs-parallel
#      sweeps) as an explicit final gate,
#   5. a bounded chaos soak (fixed seeds, 3 compound-fault cocktails across
#      all five protocols) under the same sanitizer, always with --check so
#      the pipelined verifier rides every soak run,
#   6. a real-substrate loopback smoke: ccserve is started (oracle on) and
#      driven by ccload for each of the five protocols; a lost transaction,
#      a conservation violation, zero commits, or an unclean server
#      shutdown fails the leg,
#   7. a checker-overhead budget gate: the tracked BENCH_kernel.json must
#      record on_overhead_pct <= CCSIM_CI_CHECKER_BUDGET (default 12) — the
#      price of the always-on verifier is a CI-enforced contract, not a
#      hope.
#
# Usage: tools/ci.sh [build-dir]   (default: build-ci)
# Environment:
#   CCSIM_CI_SANITIZE   sanitizer for the build: asan (default), tsan, OFF
#   CCSIM_CI_JOBS       parallelism (default: nproc)
#   CCSIM_CI_CHECKER_BUDGET  max allowed checker-on overhead percent (12)
#   CCSIM_CI_SMOKE_SECS  measured seconds per protocol in the loopback
#                        smoke (default 5; ~30 s wall across all five)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-ci}"
sanitize="${CCSIM_CI_SANITIZE:-asan}"
jobs="${CCSIM_CI_JOBS:-$(nproc)}"
checker_budget="${CCSIM_CI_CHECKER_BUDGET:-12}"
smoke_secs="${CCSIM_CI_SMOKE_SECS:-5}"

step() { echo; echo "=== $* ==="; }

step "configure ($build_dir, CCSIM_SANITIZE=$sanitize)"
cmake -B "$build_dir" -S "$repo_root" -DCCSIM_SANITIZE="$sanitize"

step "build"
cmake --build "$build_dir" -j"$jobs"

cd "$build_dir"

step "tier-1: full test suite"
ctest --output-on-failure -j"$jobs"

step "chaos suite (ctest -L chaos)"
ctest -L chaos --output-on-failure -j"$jobs"

step "oracle suite (ctest -L oracle)"
ctest -L oracle --output-on-failure -j"$jobs"

step "determinism gate"
ctest -R "Determinism" --output-on-failure -j"$jobs"

step "bounded chaos soak (3 fixed seeds x 5 protocols, oracle on)"
"$build_dir"/tools/ccsim_run --chaos-soak=3 --seed=1 --jobs="$jobs" --check

step "ccserve/ccload loopback smoke (5 protocols x ${smoke_secs}s, oracle on)"
# One fresh server per protocol: a poisoned server state from one run must
# not be able to mask (or cause) a failure in the next. ccload exits
# non-zero on zero commits, lost transactions, or a conservation
# violation; ccserve exits non-zero on an unclean shutdown; set -e
# propagates both.
for algo in 2pl cert callback no-wait no-wait-notify; do
  port_file="$build_dir/ccserve.$algo.port"
  rm -f "$port_file"
  "$build_dir"/tools/ccserve --algorithm="$algo" --clients=8 --port=0 \
      --port-file="$port_file" --check --duration=$((smoke_secs + 60)) &
  serve_pid=$!
  for _ in $(seq 100); do
    [[ -s "$port_file" ]] && break
    sleep 0.1
  done
  if [[ ! -s "$port_file" ]]; then
    echo "FAIL: ccserve ($algo) never wrote its port"
    kill "$serve_pid" 2>/dev/null || true
    exit 1
  fi
  "$build_dir"/tools/ccload --port-file="$port_file" --algorithm="$algo" \
      --clients=8 --duration="$smoke_secs" --warmup=1
  kill -TERM "$serve_pid" 2>/dev/null || true
  wait "$serve_pid"
done

step "checker-overhead budget (<= ${checker_budget}%)"
python3 - "$repo_root/BENCH_kernel.json" "$checker_budget" <<'PYEOF'
import json, sys
try:
    baseline = json.load(open(sys.argv[1]))
except OSError:
    sys.exit(f"FAIL: {sys.argv[1]} missing - run tools/bench_baseline.sh")
budget = float(sys.argv[2])
guard = baseline.get("checker_guard", {})
overhead = guard.get("on_overhead_pct")
if overhead is None:
    sys.exit("FAIL: checker_guard.on_overhead_pct missing from baseline - "
             "regenerate with tools/bench_baseline.sh")
print(f"checker-on overhead: {overhead}% (budget {budget}%)")
if overhead > budget:
    sys.exit(f"FAIL: checker-on overhead {overhead}% exceeds the "
             f"{budget}% budget")
PYEOF

step "ci passed"
