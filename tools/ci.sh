#!/usr/bin/env bash
# Single-command CI entry point. Builds the tree under ASan/UBSan and runs,
# in order:
#   1. the full tier-1 suite (every registered test),
#   2. the chaos suite      (ctest -L chaos  — fault-injection survival),
#   3. the oracle suite     (ctest -L oracle — serializability oracle +
#                            invariant auditor, incl. the broken-protocol
#                            negative control),
#   4. the determinism tests (byte-identical replay, serial-vs-parallel
#      sweeps) as an explicit final gate,
#   5. a bounded chaos soak (fixed seeds, 3 compound-fault cocktails across
#      all five protocols) under the same sanitizer, always with --check so
#      the pipelined verifier rides every soak run,
#   6. a real-substrate loopback smoke: ccserve is started (oracle on) and
#      driven by ccload for each of the five protocols; a lost transaction,
#      a conservation violation, zero commits, or an unclean server
#      shutdown fails the leg,
#   7. a real-substrate chaos cocktail: each of the five protocols runs on
#      threads + TCP with frame drop/duplicate/delay-spike, one hard
#      partition, and one server crash + log-replay restart, oracle on; a
#      lost transaction (exit 4), an oracle violation, or a stall fails,
#   8. a perf-smoke gate (ctest -L perf-smoke): the allocation-free
#      steady-state contracts — the event kernel's Delay/broadcast paths
#      AND the real-substrate wire path (encode/flush/split/decode) — are
#      asserted exactly via a counting operator new,
#   9. a real-substrate throughput floor: the loopback probe (same config
#      bench_baseline.sh records) must not fall more than
#      CCSIM_CI_TPUT_TOLERANCE percent below the tracked
#      BENCH_kernel.json real_substrate number. Wall-clock throughput is
#      host- and build-sensitive, so the gate self-skips (with a message)
#      under a sanitizer, in a Debug build, or when the baseline was
#      recorded on a host with a different core count,
#  10. a checker-overhead budget gate: the tracked BENCH_kernel.json must
#      record on_overhead_pct <= CCSIM_CI_CHECKER_BUDGET (default 12) — the
#      price of the always-on verifier is a CI-enforced contract, not a
#      hope.
#
# Usage: tools/ci.sh [build-dir]   (default: build-ci)
# Environment:
#   CCSIM_CI_SANITIZE   sanitizer for the build: asan (default), tsan, OFF
#   CCSIM_CI_JOBS       parallelism (default: nproc)
#   CCSIM_CI_CHECKER_BUDGET  max allowed checker-on overhead percent (12)
#   CCSIM_CI_SMOKE_SECS  measured seconds per protocol in the loopback
#                        smoke (default 5; ~30 s wall across all five)
#   CCSIM_CI_TPUT_TOLERANCE  allowed real-substrate commits/s shortfall
#                        versus the baseline, percent (default 10)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-ci}"
# Absolutize: later steps cd into the build dir and still reference it.
mkdir -p "$build_dir"
build_dir="$(cd "$build_dir" && pwd)"
sanitize="${CCSIM_CI_SANITIZE:-asan}"
jobs="${CCSIM_CI_JOBS:-$(nproc)}"
checker_budget="${CCSIM_CI_CHECKER_BUDGET:-12}"
smoke_secs="${CCSIM_CI_SMOKE_SECS:-5}"
tput_tolerance="${CCSIM_CI_TPUT_TOLERANCE:-10}"

step() { echo; echo "=== $* ==="; }

step "configure ($build_dir, CCSIM_SANITIZE=$sanitize)"
cmake -B "$build_dir" -S "$repo_root" -DCCSIM_SANITIZE="$sanitize"

step "build"
cmake --build "$build_dir" -j"$jobs"

cd "$build_dir"

step "tier-1: full test suite"
ctest --output-on-failure -j"$jobs"

step "chaos suite (ctest -L chaos)"
ctest -L chaos --output-on-failure -j"$jobs"

step "oracle suite (ctest -L oracle)"
ctest -L oracle --output-on-failure -j"$jobs"

step "determinism gate"
ctest -R "Determinism" --output-on-failure -j"$jobs"

step "bounded chaos soak (3 fixed seeds x 5 protocols, oracle on)"
"$build_dir"/tools/ccsim_run --chaos-soak=3 --seed=1 --jobs="$jobs" --check

step "ccserve/ccload loopback smoke (5 protocols x ${smoke_secs}s, oracle on)"
# One fresh server per protocol: a poisoned server state from one run must
# not be able to mask (or cause) a failure in the next. ccload exits
# non-zero on zero commits, lost transactions, or a conservation
# violation; ccserve exits non-zero on an unclean shutdown; set -e
# propagates both.
for algo in 2pl cert callback no-wait no-wait-notify; do
  port_file="$build_dir/ccserve.$algo.port"
  rm -f "$port_file"
  "$build_dir"/tools/ccserve --algorithm="$algo" --clients=8 --port=0 \
      --port-file="$port_file" --check --duration=$((smoke_secs + 60)) &
  serve_pid=$!
  for _ in $(seq 100); do
    [[ -s "$port_file" ]] && break
    sleep 0.1
  done
  if [[ ! -s "$port_file" ]]; then
    echo "FAIL: ccserve ($algo) never wrote its port"
    kill "$serve_pid" 2>/dev/null || true
    exit 1
  fi
  "$build_dir"/tools/ccload --port-file="$port_file" --algorithm="$algo" \
      --clients=8 --duration="$smoke_secs" --warmup=1
  kill -TERM "$serve_pid" 2>/dev/null || true
  wait "$serve_pid"
done

step "real-substrate chaos cocktail (5 protocols, drop+dup+spike+hard-partition+crash)"
# The wire-level fault plan from DESIGN.md §5c on real threads + TCP:
# 2% frame drop, 1% duplicate, 5% 5 ms delay spikes, one hard partition
# (TCP connection killed mid-run), one server crash + log-replay restart.
# ccsim_run exits 4 if any committed transaction was lost, non-zero on an
# oracle violation or stall; set -e propagates.
for algo in 2pl cert callback no-wait no-wait-notify; do
  "$build_dir"/tools/ccsim_run --substrate=real --algorithm="$algo" \
      --clients=8 --duration=4 --check \
      --drop=0.02 --dup=0.01 --spike=0.05:5 \
      --partition=0:1.5:0.5:hard --crash=-1:2.5:0.3
done

step "perf-smoke gate (allocation-free steady states, ctest -L perf-smoke)"
ctest -L perf-smoke --output-on-failure -j"$jobs"

step "real-substrate throughput floor (within ${tput_tolerance}% of baseline)"
build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$build_dir/CMakeCache.txt")"
if [[ "$sanitize" != "OFF" ]]; then
  echo "skipped: sanitized build ($sanitize) — wall-clock throughput is" \
       "not comparable to the baseline"
elif [[ "$build_type" != "Release" && "$build_type" != "RelWithDebInfo" ]]; then
  echo "skipped: build type $build_type is not an optimized build"
elif ! baseline_tput_info="$(2>&1 python3 - "$repo_root/BENCH_kernel.json" "$(nproc)" <<'PYEOF'
import json, sys
try:
    baseline = json.load(open(sys.argv[1]))
except OSError:
    sys.exit("no BENCH_kernel.json - run tools/bench_baseline.sh")
real = baseline.get("real_substrate", {})
tput = real.get("commits_per_second")
if not tput:
    sys.exit("baseline has no real_substrate.commits_per_second")
cores = baseline.get("host", {}).get("cores")
if cores != int(sys.argv[2]):
    sys.exit(f"baseline recorded on a {cores}-core host, this one has "
             f"{sys.argv[2]} - numbers are not comparable")
print(tput, real.get("shards", 1), real.get("clients", 16),
      real.get("duration_seconds", 3))
PYEOF
)"; then
  echo "skipped: $baseline_tput_info"
else
  read -r baseline_tput probe_shards probe_clients probe_secs \
      <<<"$baseline_tput_info"
  "$build_dir"/tools/ccsim_run --substrate=real --algorithm=2pl \
      --clients="$probe_clients" --shards="$probe_shards" \
      --duration="$probe_secs" --update-delay=0 --internal-delay=0 \
      --external-delay=0 --csv >"$build_dir/ci_real_probe.csv"
  probe_tput=$(awk -F, 'NR==2{print $7}' "$build_dir/ci_real_probe.csv")
  python3 - "$baseline_tput" "$probe_tput" "$tput_tolerance" <<'PYEOF'
import sys
baseline, probe, tolerance = map(float, sys.argv[1:4])
floor = baseline * (1 - tolerance / 100)
print(f"real-substrate probe: {probe:.0f} commits/s "
      f"(baseline {baseline:.0f}, floor {floor:.0f})")
if probe < floor:
    sys.exit(f"FAIL: real-substrate loopback throughput {probe:.0f} "
             f"commits/s fell more than {tolerance}% below the tracked "
             f"baseline {baseline:.0f}")
PYEOF
fi

step "checker-overhead budget (<= ${checker_budget}%)"
python3 - "$repo_root/BENCH_kernel.json" "$checker_budget" <<'PYEOF'
import json, sys
try:
    baseline = json.load(open(sys.argv[1]))
except OSError:
    sys.exit(f"FAIL: {sys.argv[1]} missing - run tools/bench_baseline.sh")
budget = float(sys.argv[2])
guard = baseline.get("checker_guard", {})
overhead = guard.get("on_overhead_pct")
if overhead is None:
    sys.exit("FAIL: checker_guard.on_overhead_pct missing from baseline - "
             "regenerate with tools/bench_baseline.sh")
print(f"checker-on overhead: {overhead}% (budget {budget}%)")
if overhead > budget:
    sys.exit(f"FAIL: checker-on overhead {overhead}% exceeds the "
             f"{budget}% budget")
PYEOF

step "ci passed"
