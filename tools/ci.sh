#!/usr/bin/env bash
# Single-command CI entry point. Builds the tree under ASan/UBSan and runs,
# in order:
#   1. the full tier-1 suite (every registered test),
#   2. the chaos suite      (ctest -L chaos  — fault-injection survival),
#   3. the oracle suite     (ctest -L oracle — serializability oracle +
#                            invariant auditor, incl. the broken-protocol
#                            negative control),
#   4. the determinism tests (byte-identical replay, serial-vs-parallel
#      sweeps) as an explicit final gate,
#   5. a bounded chaos soak (fixed seeds, 3 compound-fault cocktails across
#      all five protocols) under the same sanitizer, always with --check so
#      the pipelined verifier rides every soak run,
#   6. a checker-overhead budget gate: the tracked BENCH_kernel.json must
#      record on_overhead_pct <= CCSIM_CI_CHECKER_BUDGET (default 12) — the
#      price of the always-on verifier is a CI-enforced contract, not a
#      hope.
#
# Usage: tools/ci.sh [build-dir]   (default: build-ci)
# Environment:
#   CCSIM_CI_SANITIZE   sanitizer for the build: asan (default), tsan, OFF
#   CCSIM_CI_JOBS       parallelism (default: nproc)
#   CCSIM_CI_CHECKER_BUDGET  max allowed checker-on overhead percent (12)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-ci}"
sanitize="${CCSIM_CI_SANITIZE:-asan}"
jobs="${CCSIM_CI_JOBS:-$(nproc)}"
checker_budget="${CCSIM_CI_CHECKER_BUDGET:-12}"

step() { echo; echo "=== $* ==="; }

step "configure ($build_dir, CCSIM_SANITIZE=$sanitize)"
cmake -B "$build_dir" -S "$repo_root" -DCCSIM_SANITIZE="$sanitize"

step "build"
cmake --build "$build_dir" -j"$jobs"

cd "$build_dir"

step "tier-1: full test suite"
ctest --output-on-failure -j"$jobs"

step "chaos suite (ctest -L chaos)"
ctest -L chaos --output-on-failure -j"$jobs"

step "oracle suite (ctest -L oracle)"
ctest -L oracle --output-on-failure -j"$jobs"

step "determinism gate"
ctest -R "Determinism" --output-on-failure -j"$jobs"

step "bounded chaos soak (3 fixed seeds x 5 protocols, oracle on)"
"$build_dir"/tools/ccsim_run --chaos-soak=3 --seed=1 --jobs="$jobs" --check

step "checker-overhead budget (<= ${checker_budget}%)"
python3 - "$repo_root/BENCH_kernel.json" "$checker_budget" <<'PYEOF'
import json, sys
try:
    baseline = json.load(open(sys.argv[1]))
except OSError:
    sys.exit(f"FAIL: {sys.argv[1]} missing - run tools/bench_baseline.sh")
budget = float(sys.argv[2])
guard = baseline.get("checker_guard", {})
overhead = guard.get("on_overhead_pct")
if overhead is None:
    sys.exit("FAIL: checker_guard.on_overhead_pct missing from baseline - "
             "regenerate with tools/bench_baseline.sh")
print(f"checker-on overhead: {overhead}% (budget {budget}%)")
if overhead > budget:
    sys.exit(f"FAIL: checker-on overhead {overhead}% exceeds the "
             f"{budget}% budget")
PYEOF

step "ci passed"
