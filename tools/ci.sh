#!/usr/bin/env bash
# Single-command CI entry point. Builds the tree under ASan/UBSan and runs,
# in order:
#   1. the full tier-1 suite (every registered test),
#   2. the chaos suite      (ctest -L chaos  — fault-injection survival),
#   3. the oracle suite     (ctest -L oracle — serializability oracle +
#                            invariant auditor, incl. the broken-protocol
#                            negative control),
#   4. the determinism tests (byte-identical replay, serial-vs-parallel
#      sweeps) as an explicit final gate,
#   5. a bounded chaos soak (fixed seeds, 3 compound-fault cocktails across
#      all five protocols with the oracle on) under the same sanitizer.
#
# Usage: tools/ci.sh [build-dir]   (default: build-ci)
# Environment:
#   CCSIM_CI_SANITIZE   sanitizer for the build: asan (default), tsan, OFF
#   CCSIM_CI_JOBS       parallelism (default: nproc)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-ci}"
sanitize="${CCSIM_CI_SANITIZE:-asan}"
jobs="${CCSIM_CI_JOBS:-$(nproc)}"

step() { echo; echo "=== $* ==="; }

step "configure ($build_dir, CCSIM_SANITIZE=$sanitize)"
cmake -B "$build_dir" -S "$repo_root" -DCCSIM_SANITIZE="$sanitize"

step "build"
cmake --build "$build_dir" -j"$jobs"

cd "$build_dir"

step "tier-1: full test suite"
ctest --output-on-failure -j"$jobs"

step "chaos suite (ctest -L chaos)"
ctest -L chaos --output-on-failure -j"$jobs"

step "oracle suite (ctest -L oracle)"
ctest -L oracle --output-on-failure -j"$jobs"

step "determinism gate"
ctest -R "Determinism" --output-on-failure -j"$jobs"

step "bounded chaos soak (3 fixed seeds x 5 protocols)"
"$build_dir"/tools/ccsim_run --chaos-soak=3 --seed=1 --jobs="$jobs"

step "ci passed"
