// Quickstart: configure a client/server DBMS simulation, run it, and read
// the results.
//
//   $ ./build/examples/quickstart
//
// The library models the system of Wang & Rowe (SIGMOD '91): diskless
// client workstations with page caches, a page server with buffer pool /
// log / lock managers, a shared FCFS network, and one of five cache
// consistency algorithms.

#include <cstdio>

#include "config/params.h"
#include "runner/experiment.h"

int main() {
  // 1. Start from the paper's Table 5 base configuration...
  ccsim::config::ExperimentConfig cfg = ccsim::config::BaseConfig();

  // 2. ...describe the workload and system under study...
  cfg.system.num_clients = 20;
  cfg.transaction.prob_write = 0.2;      // 20% of read pages get updated
  cfg.transaction.inter_xact_loc = 0.5;  // consecutive xacts share objects
  cfg.algorithm.algorithm = ccsim::config::Algorithm::kCallbackLocking;

  // 3. ...and control the measurement (warmup, then measure until 2000
  // commits or 300 simulated seconds, whichever comes first).
  cfg.control.seed = 1;
  cfg.control.warmup_seconds = 20;
  cfg.control.target_commits = 2000;
  cfg.control.max_measure_seconds = 300;

  const ccsim::Result<ccsim::runner::RunResult> result =
      ccsim::runner::RunExperiment(cfg);
  if (!result.ok()) {
    std::fprintf(stderr, "configuration rejected: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const ccsim::runner::RunResult& r = result.ValueOrDie();

  std::printf("algorithm           : %s\n",
              ccsim::config::AlgorithmLabel(cfg.algorithm.algorithm,
                                            cfg.algorithm.caching)
                  .c_str());
  std::printf("measured window     : %.1f simulated seconds\n",
              r.measured_seconds);
  std::printf("commits / aborts    : %llu / %llu\n",
              static_cast<unsigned long long>(r.commits),
              static_cast<unsigned long long>(r.aborts));
  std::printf("mean response time  : %.3f s (+/- %.3f, ~90%% CI)\n",
              r.mean_response_s, r.response_ci_s);
  std::printf("throughput          : %.2f commits/s\n", r.throughput_tps);
  std::printf("server CPU util     : %.2f\n", r.server_cpu_util);
  std::printf("network util        : %.2f\n", r.network_util);
  std::printf("data disk util      : %.2f\n", r.data_disk_util);
  std::printf("client cache hits   : %.1f%%\n", r.client_hit_ratio * 100);
  std::printf("server buffer hits  : %.1f%%\n",
              r.server_buffer_hit_ratio * 100);
  std::printf("messages (packets)  : %llu (%llu)\n",
              static_cast<unsigned long long>(r.messages),
              static_cast<unsigned long long>(r.packets));
  return 0;
}
