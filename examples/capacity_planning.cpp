// Capacity planning: how many client workstations can one server support
// before mean response time exceeds an SLO?
//
// Sweeps the client count upward for a chosen algorithm and workload and
// reports the knee of the response-time curve together with the resource
// that saturates first — the kind of question the paper's §5.3/§5.4
// bottleneck analysis answers.
//
//   $ ./build/examples/capacity_planning [slo_seconds] [locality] [pw]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "config/params.h"
#include "runner/experiment.h"
#include "runner/report.h"

namespace {

using ccsim::config::Algorithm;
using ccsim::config::ExperimentConfig;
using ccsim::runner::RunResult;
using ccsim::runner::Table;

const char* Bottleneck(const RunResult& r) {
  const double util[] = {r.server_cpu_util, r.network_util,
                         r.data_disk_util, r.client_cpu_util};
  const char* names[] = {"server CPU", "network", "data disks",
                         "client CPU"};
  int argmax = 0;
  for (int i = 1; i < 4; ++i) {
    if (util[i] > util[argmax]) {
      argmax = i;
    }
  }
  return util[argmax] > 0.85 ? names[argmax] : "none (lock waits/think)";
}

}  // namespace

int main(int argc, char** argv) {
  const double slo_s = argc > 1 ? std::atof(argv[1]) : 2.0;
  const double locality = argc > 2 ? std::atof(argv[2]) : 0.5;
  const double prob_write = argc > 3 ? std::atof(argv[3]) : 0.2;

  std::printf("SLO: mean response <= %.2fs; locality %.2f, write "
              "probability %.2f\n", slo_s, locality, prob_write);

  const struct {
    Algorithm algorithm;
    const char* label;
  } kAlgorithms[] = {
      {Algorithm::kTwoPhaseLocking, "2PL"},
      {Algorithm::kCallbackLocking, "callback"},
      {Algorithm::kNoWaitNotify, "no-wait+notify"},
  };

  Table table("Supported clients under the SLO",
              {"algorithm", "max clients", "resp(s) at max", "tput at max",
               "bottleneck beyond"});
  for (const auto& alg : kAlgorithms) {
    int supported = 0;
    RunResult at_max;
    RunResult beyond;
    for (int clients = 5; clients <= 80; clients += 5) {
      ExperimentConfig cfg = ccsim::config::BaseConfig();
      cfg.system.num_clients = clients;
      cfg.transaction.inter_xact_loc = locality;
      cfg.transaction.prob_write = prob_write;
      cfg.algorithm.algorithm = alg.algorithm;
      cfg.control.warmup_seconds = 30;
      cfg.control.target_commits = 1500;
      cfg.control.max_measure_seconds = 300;
      const RunResult r =
          ccsim::runner::RunExperiment(cfg).ValueOrDie();
      if (r.mean_response_s <= slo_s) {
        supported = clients;
        at_max = r;
      } else {
        beyond = r;
        break;
      }
    }
    table.AddRow({alg.label,
                  supported == 0 ? "<5" : std::to_string(supported),
                  Table::Num(at_max.mean_response_s, 2),
                  Table::Num(at_max.throughput_tps, 2),
                  Bottleneck(beyond)});
  }
  table.Print();
  return 0;
}
