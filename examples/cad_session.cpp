// CAD / OODBMS session study — the workload class that motivated the paper
// (persistent programming languages, object-oriented DBMSs, design tools).
//
// A team of designers works interactively against a shared design
// database: long think times, very high inter-transaction locality (each
// designer keeps revisiting their own sub-assembly), occasional writes.
// The question the paper poses for exactly this setting: is it worth
// moving from two-phase locking to callback locking?
//
//   $ ./build/examples/cad_session [designers]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "config/params.h"
#include "runner/experiment.h"
#include "runner/report.h"

namespace {

using ccsim::config::Algorithm;
using ccsim::config::ExperimentConfig;
using ccsim::runner::RunResult;
using ccsim::runner::Table;

ExperimentConfig DesignStudio(int designers) {
  ExperimentConfig cfg = ccsim::config::BaseConfig();
  // A larger design database of complex objects: 3-page objects that can
  // share sub-objects (paper §3.1's atom-sharing model).
  cfg.database.num_classes = 40;
  cfg.database.pages_per_class = {100};
  cfg.database.object_size = {3};
  cfg.database.cluster_factor = 0.9;

  // Interactive editing: read a part, think, maybe modify it.
  cfg.transaction.min_xact_size = 3;
  cfg.transaction.max_xact_size = 8;
  cfg.transaction.prob_write = 0.1;
  cfg.transaction.update_delay_s = 3.0;
  cfg.transaction.internal_delay_s = 1.0;
  cfg.transaction.external_delay_s = 5.0;
  // Designers revisit their own sub-assembly constantly.
  cfg.transaction.inter_xact_set_size = 30;
  cfg.transaction.inter_xact_loc = 0.8;

  cfg.system.num_clients = designers;
  cfg.system.client_cache_pages = 200;

  cfg.control.warmup_seconds = 120;
  cfg.control.target_commits = 800;
  cfg.control.max_measure_seconds = 2000;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const int designers = argc > 1 ? std::atoi(argv[1]) : 24;
  std::printf("Design studio: %d interactive designers, 3-page parts, "
              "locality 0.8, 10%% updates\n", designers);

  Table table("Consistency algorithm comparison for the design studio",
              {"algorithm", "resp(s)", "tput", "aborts", "msgs/commit",
               "cache hit%", "srv cpu"});
  struct Row {
    Algorithm algorithm;
    const char* label;
  };
  const Row kRows[] = {
      {Algorithm::kTwoPhaseLocking, "2PL (status quo)"},
      {Algorithm::kCallbackLocking, "callback locking"},
      {Algorithm::kCertification, "certification"},
      {Algorithm::kNoWaitNotify, "no-wait + notify"},
  };
  double two_phase_resp = 0;
  double callback_resp = 0;
  for (const Row& row : kRows) {
    ExperimentConfig cfg = DesignStudio(designers);
    cfg.algorithm.algorithm = row.algorithm;
    const RunResult r =
        ccsim::runner::RunExperiment(cfg).ValueOrDie();
    if (row.algorithm == Algorithm::kTwoPhaseLocking) {
      two_phase_resp = r.mean_response_s;
    }
    if (row.algorithm == Algorithm::kCallbackLocking) {
      callback_resp = r.mean_response_s;
    }
    table.AddRow({row.label, Table::Num(r.mean_response_s, 2),
                  Table::Num(r.throughput_tps, 2), Table::Int(r.aborts),
                  Table::Num(r.commits == 0
                                 ? 0.0
                                 : static_cast<double>(r.messages) /
                                       static_cast<double>(r.commits),
                             1),
                  Table::Num(r.client_hit_ratio * 100, 1),
                  Table::Num(r.server_cpu_util, 2)});
  }
  table.Print();

  // Two of the paper's findings meet in this scenario: high locality and
  // low write probability favour callback locking (§5.1), but interactive
  // think times damp every resource-based advantage and penalize deferred
  // callback processing (§5.5). The interesting outcome is the *message*
  // economy: retained locks service most reads with no server contact at
  // all, which is what matters when the server is shared with other work.
  const double gain = (two_phase_resp - callback_resp) / two_phase_resp;
  std::printf("\nCallback locking vs 2PL: %.1f%% %s mean response time "
              "(think-time dominated, per paper \u00a75.5), with the "
              "message economy shown in the msgs/commit column.\n",
              std::abs(gain) * 100, gain > 0 ? "lower" : "higher");
  return 0;
}
