// Design advisor: "which consistency algorithm should my client/server
// DBMS use?" — the practical question behind the paper's Figure 13.
//
// Describe your deployment on the command line and the advisor simulates
// all five algorithms (plus caching modes) under your parameters and
// ranks them by mean response time:
//
//   $ ./build/examples/design_advisor [clients] [locality] [prob_write]
//   $ ./build/examples/design_advisor 30 0.6 0.1

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "config/params.h"
#include "runner/experiment.h"
#include "runner/report.h"

namespace {

using ccsim::config::Algorithm;
using ccsim::config::CachingMode;
using ccsim::config::ExperimentConfig;
using ccsim::runner::RunResult;
using ccsim::runner::Table;

struct Candidate {
  Algorithm algorithm;
  CachingMode caching;
};

const Candidate kCandidates[] = {
    {Algorithm::kTwoPhaseLocking, CachingMode::kIntraTransaction},
    {Algorithm::kTwoPhaseLocking, CachingMode::kInterTransaction},
    {Algorithm::kCertification, CachingMode::kInterTransaction},
    {Algorithm::kCallbackLocking, CachingMode::kInterTransaction},
    {Algorithm::kNoWaitLocking, CachingMode::kInterTransaction},
    {Algorithm::kNoWaitNotify, CachingMode::kInterTransaction},
};

}  // namespace

int main(int argc, char** argv) {
  const int clients = argc > 1 ? std::atoi(argv[1]) : 30;
  const double locality = argc > 2 ? std::atof(argv[2]) : 0.5;
  const double prob_write = argc > 3 ? std::atof(argv[3]) : 0.2;

  std::printf("Evaluating %d clients, locality %.2f, write probability "
              "%.2f...\n", clients, locality, prob_write);

  struct Ranked {
    std::string label;
    RunResult result;
  };
  std::vector<Ranked> ranked;
  for (const Candidate& candidate : kCandidates) {
    ExperimentConfig cfg = ccsim::config::BaseConfig();
    cfg.system.num_clients = clients;
    cfg.transaction.inter_xact_loc = locality;
    cfg.transaction.prob_write = prob_write;
    cfg.algorithm.algorithm = candidate.algorithm;
    cfg.algorithm.caching = candidate.caching;
    cfg.control.warmup_seconds = 30;
    cfg.control.target_commits = 2000;
    cfg.control.max_measure_seconds = 400;
    const ccsim::Result<RunResult> result = ccsim::runner::RunExperiment(cfg);
    if (!result.ok()) {
      std::fprintf(stderr, "skipping %s: %s\n",
                   ccsim::config::AlgorithmLabel(candidate.algorithm,
                                                 candidate.caching)
                       .c_str(),
                   result.status().ToString().c_str());
      continue;
    }
    ranked.push_back(Ranked{ccsim::config::AlgorithmLabel(
                                candidate.algorithm, candidate.caching),
                            result.ValueOrDie()});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Ranked& a, const Ranked& b) {
              return a.result.mean_response_s < b.result.mean_response_s;
            });

  Table table("Ranking (best first)",
              {"algorithm", "resp(s)", "tput", "aborts", "srv cpu",
               "net", "cache hit%"});
  for (const Ranked& r : ranked) {
    table.AddRow({r.label, Table::Num(r.result.mean_response_s, 3),
                  Table::Num(r.result.throughput_tps, 2),
                  Table::Int(r.result.aborts),
                  Table::Num(r.result.server_cpu_util, 2),
                  Table::Num(r.result.network_util, 2),
                  Table::Num(r.result.client_hit_ratio * 100, 1)});
  }
  table.Print();

  const Ranked& best = ranked.front();
  std::printf("\nRecommendation: %s", best.label.c_str());
  // Echo the paper's qualitative guidance when it applies.
  if (best.result.mean_response_s >
      0.95 * ranked[1].result.mean_response_s) {
    std::printf(" (margin over %s is <5%%: either is fine)",
                ranked[1].label.c_str());
  }
  std::printf("\n");
  return 0;
}
