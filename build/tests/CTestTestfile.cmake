# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_kernel_test[1]_include.cmake")
include("/root/repo/build/tests/stats_random_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/lock_manager_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/liveness_test[1]_include.cmake")
include("/root/repo/build/tests/database_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/network_test[1]_include.cmake")
include("/root/repo/build/tests/client_cache_test[1]_include.cmake")
include("/root/repo/build/tests/config_test[1]_include.cmake")
include("/root/repo/build/tests/workload_mix_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_behavior_test[1]_include.cmake")
include("/root/repo/build/tests/directory_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/queueing_theory_test[1]_include.cmake")
