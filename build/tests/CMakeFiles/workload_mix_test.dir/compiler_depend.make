# Empty compiler generated dependencies file for workload_mix_test.
# This may be replaced when dependencies are built.
