file(REMOVE_RECURSE
  "CMakeFiles/workload_mix_test.dir/workload_mix_test.cc.o"
  "CMakeFiles/workload_mix_test.dir/workload_mix_test.cc.o.d"
  "workload_mix_test"
  "workload_mix_test.pdb"
  "workload_mix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_mix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
