file(REMOVE_RECURSE
  "CMakeFiles/stats_random_test.dir/stats_random_test.cc.o"
  "CMakeFiles/stats_random_test.dir/stats_random_test.cc.o.d"
  "stats_random_test"
  "stats_random_test.pdb"
  "stats_random_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
