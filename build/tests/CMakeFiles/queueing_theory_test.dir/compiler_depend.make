# Empty compiler generated dependencies file for queueing_theory_test.
# This may be replaced when dependencies are built.
