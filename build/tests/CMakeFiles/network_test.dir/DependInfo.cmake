
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/network_test.cc" "tests/CMakeFiles/network_test.dir/network_test.cc.o" "gcc" "tests/CMakeFiles/network_test.dir/network_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runner/CMakeFiles/ccsim_runner.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/ccsim_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/ccsim_client.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ccsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/ccsim_server.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ccsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ccsim_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/lock/CMakeFiles/ccsim_lock.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/ccsim_db.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ccsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/ccsim_config.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ccsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
