# Empty dependencies file for cad_session.
# This may be replaced when dependencies are built.
