# Empty compiler generated dependencies file for cad_session.
# This may be replaced when dependencies are built.
