file(REMOVE_RECURSE
  "CMakeFiles/cad_session.dir/cad_session.cpp.o"
  "CMakeFiles/cad_session.dir/cad_session.cpp.o.d"
  "cad_session"
  "cad_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cad_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
