file(REMOVE_RECURSE
  "CMakeFiles/ccsim_run.dir/ccsim_run.cc.o"
  "CMakeFiles/ccsim_run.dir/ccsim_run.cc.o.d"
  "ccsim_run"
  "ccsim_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsim_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
