# Empty dependencies file for ccsim_run.
# This may be replaced when dependencies are built.
