# Empty compiler generated dependencies file for fig14_15_large_xact.
# This may be replaced when dependencies are built.
