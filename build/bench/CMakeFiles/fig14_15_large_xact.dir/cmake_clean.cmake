file(REMOVE_RECURSE
  "CMakeFiles/fig14_15_large_xact.dir/fig14_15_large_xact.cc.o"
  "CMakeFiles/fig14_15_large_xact.dir/fig14_15_large_xact.cc.o.d"
  "fig14_15_large_xact"
  "fig14_15_large_xact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_15_large_xact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
