# Empty compiler generated dependencies file for fig16_17_fast_server.
# This may be replaced when dependencies are built.
