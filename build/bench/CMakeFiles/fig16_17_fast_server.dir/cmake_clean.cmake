file(REMOVE_RECURSE
  "CMakeFiles/fig16_17_fast_server.dir/fig16_17_fast_server.cc.o"
  "CMakeFiles/fig16_17_fast_server.dir/fig16_17_fast_server.cc.o.d"
  "fig16_17_fast_server"
  "fig16_17_fast_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_17_fast_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
