file(REMOVE_RECURSE
  "CMakeFiles/fig13_algorithm_regions.dir/fig13_algorithm_regions.cc.o"
  "CMakeFiles/fig13_algorithm_regions.dir/fig13_algorithm_regions.cc.o.d"
  "fig13_algorithm_regions"
  "fig13_algorithm_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_algorithm_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
