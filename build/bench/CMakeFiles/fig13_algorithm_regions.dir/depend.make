# Empty dependencies file for fig13_algorithm_regions.
# This may be replaced when dependencies are built.
