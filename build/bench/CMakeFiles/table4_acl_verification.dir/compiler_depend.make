# Empty compiler generated dependencies file for table4_acl_verification.
# This may be replaced when dependencies are built.
