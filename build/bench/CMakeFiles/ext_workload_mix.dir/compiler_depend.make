# Empty compiler generated dependencies file for ext_workload_mix.
# This may be replaced when dependencies are built.
