file(REMOVE_RECURSE
  "CMakeFiles/ext_workload_mix.dir/ext_workload_mix.cc.o"
  "CMakeFiles/ext_workload_mix.dir/ext_workload_mix.cc.o.d"
  "ext_workload_mix"
  "ext_workload_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_workload_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
