file(REMOVE_RECURSE
  "CMakeFiles/fig22_interactive.dir/fig22_interactive.cc.o"
  "CMakeFiles/fig22_interactive.dir/fig22_interactive.cc.o.d"
  "fig22_interactive"
  "fig22_interactive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_interactive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
