# Empty compiler generated dependencies file for fig22_interactive.
# This may be replaced when dependencies are built.
