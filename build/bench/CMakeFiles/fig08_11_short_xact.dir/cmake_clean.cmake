file(REMOVE_RECURSE
  "CMakeFiles/fig08_11_short_xact.dir/fig08_11_short_xact.cc.o"
  "CMakeFiles/fig08_11_short_xact.dir/fig08_11_short_xact.cc.o.d"
  "fig08_11_short_xact"
  "fig08_11_short_xact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_11_short_xact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
