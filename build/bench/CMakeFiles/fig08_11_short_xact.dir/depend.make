# Empty dependencies file for fig08_11_short_xact.
# This may be replaced when dependencies are built.
