# Empty compiler generated dependencies file for fig12_short_xact_throughput.
# This may be replaced when dependencies are built.
