file(REMOVE_RECURSE
  "CMakeFiles/fig18_21_fast_network.dir/fig18_21_fast_network.cc.o"
  "CMakeFiles/fig18_21_fast_network.dir/fig18_21_fast_network.cc.o.d"
  "fig18_21_fast_network"
  "fig18_21_fast_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_21_fast_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
