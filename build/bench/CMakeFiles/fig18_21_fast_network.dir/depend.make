# Empty dependencies file for fig18_21_fast_network.
# This may be replaced when dependencies are built.
