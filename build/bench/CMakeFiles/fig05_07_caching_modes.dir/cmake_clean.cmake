file(REMOVE_RECURSE
  "CMakeFiles/fig05_07_caching_modes.dir/fig05_07_caching_modes.cc.o"
  "CMakeFiles/fig05_07_caching_modes.dir/fig05_07_caching_modes.cc.o.d"
  "fig05_07_caching_modes"
  "fig05_07_caching_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_07_caching_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
