# Empty dependencies file for ext_object_clustering.
# This may be replaced when dependencies are built.
