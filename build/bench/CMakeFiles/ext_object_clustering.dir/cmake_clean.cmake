file(REMOVE_RECURSE
  "CMakeFiles/ext_object_clustering.dir/ext_object_clustering.cc.o"
  "CMakeFiles/ext_object_clustering.dir/ext_object_clustering.cc.o.d"
  "ext_object_clustering"
  "ext_object_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_object_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
