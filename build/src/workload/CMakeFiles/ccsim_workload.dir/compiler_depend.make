# Empty compiler generated dependencies file for ccsim_workload.
# This may be replaced when dependencies are built.
