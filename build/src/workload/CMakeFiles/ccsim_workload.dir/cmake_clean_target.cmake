file(REMOVE_RECURSE
  "libccsim_workload.a"
)
