file(REMOVE_RECURSE
  "CMakeFiles/ccsim_workload.dir/workload.cc.o"
  "CMakeFiles/ccsim_workload.dir/workload.cc.o.d"
  "libccsim_workload.a"
  "libccsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
