# Empty compiler generated dependencies file for ccsim_lock.
# This may be replaced when dependencies are built.
