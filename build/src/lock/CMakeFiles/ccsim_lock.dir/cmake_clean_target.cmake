file(REMOVE_RECURSE
  "libccsim_lock.a"
)
