file(REMOVE_RECURSE
  "CMakeFiles/ccsim_lock.dir/lock_manager.cc.o"
  "CMakeFiles/ccsim_lock.dir/lock_manager.cc.o.d"
  "libccsim_lock.a"
  "libccsim_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsim_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
