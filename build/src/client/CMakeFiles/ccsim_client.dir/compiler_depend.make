# Empty compiler generated dependencies file for ccsim_client.
# This may be replaced when dependencies are built.
