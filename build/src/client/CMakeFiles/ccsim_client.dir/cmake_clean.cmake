file(REMOVE_RECURSE
  "CMakeFiles/ccsim_client.dir/client.cc.o"
  "CMakeFiles/ccsim_client.dir/client.cc.o.d"
  "CMakeFiles/ccsim_client.dir/client_cache.cc.o"
  "CMakeFiles/ccsim_client.dir/client_cache.cc.o.d"
  "libccsim_client.a"
  "libccsim_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsim_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
