file(REMOVE_RECURSE
  "libccsim_client.a"
)
