file(REMOVE_RECURSE
  "CMakeFiles/ccsim_proto.dir/callback.cc.o"
  "CMakeFiles/ccsim_proto.dir/callback.cc.o.d"
  "CMakeFiles/ccsim_proto.dir/certification.cc.o"
  "CMakeFiles/ccsim_proto.dir/certification.cc.o.d"
  "CMakeFiles/ccsim_proto.dir/factory.cc.o"
  "CMakeFiles/ccsim_proto.dir/factory.cc.o.d"
  "CMakeFiles/ccsim_proto.dir/no_wait.cc.o"
  "CMakeFiles/ccsim_proto.dir/no_wait.cc.o.d"
  "CMakeFiles/ccsim_proto.dir/protocol.cc.o"
  "CMakeFiles/ccsim_proto.dir/protocol.cc.o.d"
  "CMakeFiles/ccsim_proto.dir/two_phase.cc.o"
  "CMakeFiles/ccsim_proto.dir/two_phase.cc.o.d"
  "libccsim_proto.a"
  "libccsim_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsim_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
