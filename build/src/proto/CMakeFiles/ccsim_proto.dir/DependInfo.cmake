
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/callback.cc" "src/proto/CMakeFiles/ccsim_proto.dir/callback.cc.o" "gcc" "src/proto/CMakeFiles/ccsim_proto.dir/callback.cc.o.d"
  "/root/repo/src/proto/certification.cc" "src/proto/CMakeFiles/ccsim_proto.dir/certification.cc.o" "gcc" "src/proto/CMakeFiles/ccsim_proto.dir/certification.cc.o.d"
  "/root/repo/src/proto/factory.cc" "src/proto/CMakeFiles/ccsim_proto.dir/factory.cc.o" "gcc" "src/proto/CMakeFiles/ccsim_proto.dir/factory.cc.o.d"
  "/root/repo/src/proto/no_wait.cc" "src/proto/CMakeFiles/ccsim_proto.dir/no_wait.cc.o" "gcc" "src/proto/CMakeFiles/ccsim_proto.dir/no_wait.cc.o.d"
  "/root/repo/src/proto/protocol.cc" "src/proto/CMakeFiles/ccsim_proto.dir/protocol.cc.o" "gcc" "src/proto/CMakeFiles/ccsim_proto.dir/protocol.cc.o.d"
  "/root/repo/src/proto/two_phase.cc" "src/proto/CMakeFiles/ccsim_proto.dir/two_phase.cc.o" "gcc" "src/proto/CMakeFiles/ccsim_proto.dir/two_phase.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/client/CMakeFiles/ccsim_client.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/ccsim_server.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ccsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ccsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ccsim_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/lock/CMakeFiles/ccsim_lock.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/ccsim_db.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ccsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/ccsim_config.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ccsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
