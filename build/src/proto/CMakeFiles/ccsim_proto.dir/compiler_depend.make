# Empty compiler generated dependencies file for ccsim_proto.
# This may be replaced when dependencies are built.
