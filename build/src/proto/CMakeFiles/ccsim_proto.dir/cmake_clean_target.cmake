file(REMOVE_RECURSE
  "libccsim_proto.a"
)
