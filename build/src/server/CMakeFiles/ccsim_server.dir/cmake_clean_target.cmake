file(REMOVE_RECURSE
  "libccsim_server.a"
)
