# Empty compiler generated dependencies file for ccsim_server.
# This may be replaced when dependencies are built.
