file(REMOVE_RECURSE
  "CMakeFiles/ccsim_server.dir/server.cc.o"
  "CMakeFiles/ccsim_server.dir/server.cc.o.d"
  "libccsim_server.a"
  "libccsim_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsim_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
