file(REMOVE_RECURSE
  "libccsim_storage.a"
)
