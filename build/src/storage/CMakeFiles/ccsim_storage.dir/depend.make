# Empty dependencies file for ccsim_storage.
# This may be replaced when dependencies are built.
