file(REMOVE_RECURSE
  "CMakeFiles/ccsim_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/ccsim_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/ccsim_storage.dir/log_manager.cc.o"
  "CMakeFiles/ccsim_storage.dir/log_manager.cc.o.d"
  "libccsim_storage.a"
  "libccsim_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsim_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
