# Empty dependencies file for ccsim_db.
# This may be replaced when dependencies are built.
