file(REMOVE_RECURSE
  "libccsim_db.a"
)
