file(REMOVE_RECURSE
  "CMakeFiles/ccsim_db.dir/database.cc.o"
  "CMakeFiles/ccsim_db.dir/database.cc.o.d"
  "libccsim_db.a"
  "libccsim_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsim_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
