# Empty compiler generated dependencies file for ccsim_net.
# This may be replaced when dependencies are built.
