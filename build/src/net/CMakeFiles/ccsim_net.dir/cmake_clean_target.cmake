file(REMOVE_RECURSE
  "libccsim_net.a"
)
