file(REMOVE_RECURSE
  "CMakeFiles/ccsim_net.dir/network.cc.o"
  "CMakeFiles/ccsim_net.dir/network.cc.o.d"
  "libccsim_net.a"
  "libccsim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
