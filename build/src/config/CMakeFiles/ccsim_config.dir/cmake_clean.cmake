file(REMOVE_RECURSE
  "CMakeFiles/ccsim_config.dir/params.cc.o"
  "CMakeFiles/ccsim_config.dir/params.cc.o.d"
  "libccsim_config.a"
  "libccsim_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsim_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
