# Empty compiler generated dependencies file for ccsim_config.
# This may be replaced when dependencies are built.
