file(REMOVE_RECURSE
  "libccsim_config.a"
)
