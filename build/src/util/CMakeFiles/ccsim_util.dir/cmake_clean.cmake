file(REMOVE_RECURSE
  "CMakeFiles/ccsim_util.dir/status.cc.o"
  "CMakeFiles/ccsim_util.dir/status.cc.o.d"
  "libccsim_util.a"
  "libccsim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
