file(REMOVE_RECURSE
  "libccsim_runner.a"
)
