file(REMOVE_RECURSE
  "CMakeFiles/ccsim_runner.dir/experiment.cc.o"
  "CMakeFiles/ccsim_runner.dir/experiment.cc.o.d"
  "CMakeFiles/ccsim_runner.dir/report.cc.o"
  "CMakeFiles/ccsim_runner.dir/report.cc.o.d"
  "libccsim_runner.a"
  "libccsim_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsim_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
