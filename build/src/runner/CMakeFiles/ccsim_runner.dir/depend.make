# Empty dependencies file for ccsim_runner.
# This may be replaced when dependencies are built.
